/**
 * @file
 * Fig 14: component ablation. Starting from Streamline-unopt (stream
 * format only) we add each structure, and from the full prefetcher we
 * remove each: metadata buffer (MB), stream alignment (SA), tagged
 * set-partitioning (TSP), TP-Mockingjay (TP-MJ).
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

using namespace sl;
using namespace sl::bench;

StreamlineConfig
unopt()
{
    StreamlineConfig c;
    c.enableBuffer = false;
    c.enableAlignment = false;
    c.taggedSetPartition = false;
    c.useTpMockingjay = false;
    return c;
}

void
row(const char* name, const StreamlineConfig& slc, double scale,
    double tg_speed, double tg_cov)
{
    const auto workloads = sweepWorkloads();
    warmBaselines(workloads, scale);
    RunConfig cfg;
    cfg.l2 = "streamline";
    cfg.streamline = slc;
    const auto runs =
        runAcross(cfg, workloads, scale, std::string("ablation:") + name);
    std::vector<double> speeds, covs, accs;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const RunResult& r = runs[i];
        speeds.push_back(r.cores[0].ipc /
                         baseline(workloads[i], scale).cores[0].ipc);
        covs.push_back(r.cores[0].coverage());
        accs.push_back(r.cores[0].accuracy());
    }
    double cov = 0, acc = 0;
    for (double c : covs)
        cov += c;
    for (double a : accs)
        acc += a;
    cov /= covs.size();
    acc /= accs.size();
    std::printf("%-18s %+7.1f%% %8.1f%% %8.1f%%   (vs triangel:"
                " %+5.1fpp cov)\n",
                name, 100 * (geomean(speeds) - 1), 100 * cov, 100 * acc,
                100 * (cov - tg_cov));
    (void)tg_speed;
    std::fflush(stdout);
}

} // namespace

int
main()
{
    banner("Fig 14: ablation of Streamline's components");
    const double scale = benchScale();

    // Triangel reference for the coverage deltas the paper quotes.
    double tg_speed = 0, tg_cov = 0;
    {
        const auto workloads = sweepWorkloads();
        warmBaselines(workloads, scale);
        RunConfig cfg;
        cfg.l2 = "triangel";
        const auto runs =
            runAcross(cfg, workloads, scale, "triangel-ref");
        std::vector<double> speeds, covs;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            speeds.push_back(runs[i].cores[0].ipc /
                             baseline(workloads[i], scale).cores[0].ipc);
            covs.push_back(runs[i].cores[0].coverage());
        }
        tg_speed = geomean(speeds);
        for (double c : covs)
            tg_cov += c;
        tg_cov /= covs.size();
        std::printf("%-18s %+7.1f%% %8.1f%%\n", "triangel (ref)",
                    100 * (tg_speed - 1), 100 * tg_cov);
    }

    std::printf("%-18s %8s %9s %9s\n", "config", "speedup", "coverage",
                "accuracy");

    // Additive series.
    row("unopt", unopt(), scale, tg_speed, tg_cov);
    {
        auto c = unopt();
        c.enableBuffer = true;
        row("+ MB", c, scale, tg_speed, tg_cov);
    }
    {
        auto c = unopt();
        c.enableAlignment = true; // 1-entry internal record only
        row("+ SA", c, scale, tg_speed, tg_cov);
    }
    {
        auto c = unopt();
        c.enableBuffer = true;
        c.enableAlignment = true;
        row("+ MB, SA", c, scale, tg_speed, tg_cov);
    }
    {
        auto c = unopt();
        c.taggedSetPartition = true;
        row("+ TSP", c, scale, tg_speed, tg_cov);
    }
    {
        auto c = unopt();
        c.useTpMockingjay = true;
        row("+ TP-MJ", c, scale, tg_speed, tg_cov);
    }
    {
        auto c = unopt();
        c.taggedSetPartition = true;
        c.useTpMockingjay = true;
        row("+ TSP, TP-MJ", c, scale, tg_speed, tg_cov);
    }

    // Subtractive series from the full design.
    row("full", StreamlineConfig{}, scale, tg_speed, tg_cov);
    {
        StreamlineConfig c;
        c.enableBuffer = false;
        row("full - MB", c, scale, tg_speed, tg_cov);
    }
    {
        StreamlineConfig c;
        c.enableAlignment = false;
        row("full - SA", c, scale, tg_speed, tg_cov);
    }
    {
        StreamlineConfig c;
        c.taggedSetPartition = false;
        row("full - TSP", c, scale, tg_speed, tg_cov);
    }
    {
        StreamlineConfig c;
        c.useTpMockingjay = false;
        row("full - TP-MJ", c, scale, tg_speed, tg_cov);
    }

    std::printf("paper: unopt already beats Triangel's coverage"
                " (+7.6pp); MB+SA and TSP+TP-MJ are synergistic pairs\n");
    return 0;
}
