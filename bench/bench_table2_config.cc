/**
 * @file
 * Table II: simulator system parameters. Echoes the paper configuration,
 * the laptop-scaled default, and self-checks that a System builds with
 * both geometries.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/system.hh"
#include "trace/workloads.hh"

namespace
{

void
show(const char* name, const sl::SystemConfig& c)
{
    std::printf("%s:\n", name);
    std::printf("  core   %u-wide OoO, %u-entry ROB, 4GHz\n",
                c.core.width, c.core.robSize);
    std::printf("  L1D    %zuKB, %u-way, %u-cycle, %u MSHRs, %u ports\n",
                c.l1dBytes / 1024, c.l1dWays, c.l1dLatency, c.l1dMshrs,
                c.l1dPorts);
    std::printf("  L2     %zuKB, %u-way, %u-cycle, %u MSHRs, %u port\n",
                c.l2Bytes / 1024, c.l2Ways, c.l2Latency, c.l2Mshrs,
                c.l2Ports);
    std::printf("  LLC    %zuKB/core, %u-way, %u-cycle, %u MSHRs/core\n",
                c.llcBytesPerCore / 1024, c.llcWays, c.llcLatency,
                c.llcMshrsPerCore);
    std::printf("  DRAM   %u MT/s, 8B channel, tCAS=tRP=tRCD=12.5ns,"
                " 1/2/2/4 channels for 1/2/4/8 cores\n",
                c.dramMTs);
}

} // namespace

int
main()
{
    using namespace sl::bench;
    JsonReport::instance().setBench("Table II: system parameters");
    std::printf("== Table II: system parameters ==\n");
    show("paper geometry", sl::paperGeometry());
    show("laptop-scaled default (capacities / 8; see DESIGN.md)",
         sl::SystemConfig{});

    // Self-check: both geometries build and run a short trace.
    for (bool paper : {false, true}) {
        sl::SystemConfig cfg =
            paper ? sl::paperGeometry() : sl::SystemConfig{};
        sl::System sys(cfg, {sl::getTrace("spec06_bzip2", 0.05)});
        sys.run();
        std::printf("self-check %-7s geometry: ipc=%.3f ok\n",
                    paper ? "paper" : "scaled", sys.core(0).ipc());
        JsonReport::instance().note(
            std::string("{\"geometry\":\"") +
            (paper ? "paper" : "scaled") +
            "\",\"ipc\":" + sl::jsonNumber(sys.core(0).ipc()) + "}");
    }
    return 0;
}
