/**
 * @file
 * Table I: partition-scheme property matrix (RUW..FTS).
 *
 * For each of the eight R/F x U/T x W/S combinations we measure metadata
 * hit rate at a small and a big partition (associativity proxy) and the
 * entry movement caused by repartitioning. Only FTS -- Streamline's
 * scheme -- earns a check in all three columns.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/partition_schemes.hh"

int
main()
{
    using namespace sl;
    using namespace sl::bench;
    JsonReport::instance().setBench("Table I: partitioning schemes");
    std::printf("== Table I: partitioning schemes ==\n");
    std::printf("%-8s %14s %14s %14s | %6s %6s %10s\n", "scheme",
                "hit@small", "hit@big", "move-traffic", "small", "big",
                "reparting");

    // Thresholds: a scheme "avoids low associativity" when its hit rate
    // is within 90% of the best observed at that size; it "avoids
    // expensive repartitioning" when resizes move nothing.
    std::vector<SchemeMetrics> metrics;
    double best_small = 0, best_big = 0;
    for (const auto& s : allPartitionSchemes()) {
        metrics.push_back(evaluateScheme(s, 128));
        best_small = std::max(best_small, metrics.back().hitRateSmall);
        best_big = std::max(best_big, metrics.back().hitRateBig);
    }

    const auto schemes = allPartitionSchemes();
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const auto& m = metrics[i];
        const bool ok_small = m.hitRateSmall >= 0.9 * best_small;
        const bool ok_big = m.hitRateBig >= 0.9 * best_big;
        const bool ok_resize = m.moveTraffic == 0;
        std::printf("%-8s %13.1f%% %13.1f%% %14llu | %6s %6s %10s%s\n",
                    schemes[i].name().c_str(), 100.0 * m.hitRateSmall,
                    100.0 * m.hitRateBig,
                    static_cast<unsigned long long>(m.moveTraffic),
                    ok_small ? "ok" : "LOW", ok_big ? "ok" : "LOW",
                    ok_resize ? "free" : "COSTLY",
                    schemes[i].name() == "FTS" ? "   <- Streamline" : "");
        JsonReport::instance().note(
            "{\"scheme\":\"" + jsonEscape(schemes[i].name()) +
            "\",\"hit_rate_small\":" + jsonNumber(m.hitRateSmall) +
            ",\"hit_rate_big\":" + jsonNumber(m.hitRateBig) +
            ",\"move_traffic\":" + std::to_string(m.moveTraffic) + "}");
    }
    std::printf("paper: only FTS avoids low associativity at both sizes"
                " AND costly repartitioning\n");
    return 0;
}
