/**
 * @file
 * Fig 10f: speedup vs maximum prefetch degree. Streamline profits from
 * degree up to its stream length (single-read multi-target entries);
 * Triangel's pairwise chains jump across streams and flatten out.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace sl;
    using namespace sl::bench;
    banner("Fig 10f: speedup vs max prefetch degree");

    const double scale = benchScale();
    const auto workloads = sweepWorkloads();

    std::printf("%-8s %10s %10s\n", "degree", "triangel", "streamline");
    for (unsigned degree : {1u, 2u, 4u, 8u}) {
        RunConfig tg;
        tg.l2 = L2Pf::Triangel;
        tg.triangel.maxDegree = degree;
        RunConfig sl_cfg;
        sl_cfg.l2 = L2Pf::Streamline;
        sl_cfg.streamline.maxDegree = degree;
        // Degree beyond the stream length needs cross-entry chaining.
        const double tg_s = geomeanSpeedup(workloads, tg, scale);
        const double sl_s = geomeanSpeedup(workloads, sl_cfg, scale);
        std::printf("%-8u %+9.1f%% %+9.1f%%\n", degree,
                    100 * (tg_s - 1), 100 * (sl_s - 1));
        std::fflush(stdout);
    }
    std::printf("paper: Triangel insensitive to degree; Streamline peaks"
                " at its stream length (4)\n");
    return 0;
}
