/**
 * @file
 * Fig 10f: speedup vs maximum prefetch degree. Streamline profits from
 * degree up to its stream length (single-read multi-target entries);
 * Triangel's pairwise chains jump across streams and flatten out.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using namespace sl;
    using namespace sl::bench;
    banner("Fig 10f: speedup vs max prefetch degree");

    const double scale = benchScale();
    const auto workloads = sweepWorkloads();
    const std::vector<unsigned> degrees = {1, 2, 4, 8};

    // The whole sweep is one batch: 2 configs x 4 degrees x workloads.
    warmBaselines(workloads, scale);
    std::vector<ExperimentSpec> specs;
    for (unsigned degree : degrees) {
        RunConfig tg;
        tg.traceScale = scale;
        tg.l2 = "triangel";
        tg.triangel.maxDegree = degree;
        RunConfig sl_cfg = tg;
        sl_cfg.l2 = "streamline";
        sl_cfg.streamline.maxDegree = degree;
        // Degree beyond the stream length needs cross-entry chaining.
        const std::string d = std::to_string(degree);
        for (const auto& w : workloads)
            specs.push_back({"triangel:deg" + d + ":" + w, tg, {w}});
        for (const auto& w : workloads)
            specs.push_back({"streamline:deg" + d + ":" + w, sl_cfg, {w}});
    }
    const auto jobs = runBatch(specs);

    auto speedupAt = [&](std::size_t offset) {
        std::vector<double> s;
        for (std::size_t i = 0; i < workloads.size(); ++i)
            s.push_back(jobs[offset + i].result.cores[0].ipc /
                        baseline(workloads[i], scale).cores[0].ipc);
        return geomean(s);
    };

    std::printf("%-8s %10s %10s\n", "degree", "triangel", "streamline");
    for (std::size_t di = 0; di < degrees.size(); ++di) {
        const std::size_t base_idx = di * 2 * workloads.size();
        const double tg_s = speedupAt(base_idx);
        const double sl_s = speedupAt(base_idx + workloads.size());
        std::printf("%-8u %+9.1f%% %+9.1f%%\n", degrees[di],
                    100 * (tg_s - 1), 100 * (sl_s - 1));
        std::fflush(stdout);
    }
    std::printf("paper: Triangel insensitive to degree; Streamline peaks"
                " at its stream length (4)\n");
    return 0;
}
