/**
 * @file
 * Fig 15: mitigating filtering coverage loss at small partitions.
 * Compares, at small fixed partition sizes: filtering with no mitigation,
 * + stream realignment, + skewed indexing, and hybrid partitioning
 * (half the sets, half the ways), against an unfiltered reference
 * (the same capacity with no filtering loss, via the ideal store).
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

using namespace sl;
using namespace sl::bench;

double
speedupOf(const StreamlineConfig& slc, double scale)
{
    // geomeanSpeedup batches the per-workload jobs (and the baselines)
    // through the shared BatchRunner pool.
    RunConfig cfg;
    cfg.l2 = "streamline";
    cfg.streamline = slc;
    return geomeanSpeedup(sweepWorkloads(), cfg, scale);
}

} // namespace

int
main()
{
    banner("Fig 15: filtering loss, realignment, skew, hybrid");
    const double scale = benchScale();

    std::printf("%-10s %12s %12s %12s %12s\n", "size", "no-mitig",
                "+realign", "+skew", "hybrid");
    struct Point
    {
        const char* label;
        unsigned den;
        unsigned hybrid_den;
        unsigned hybrid_ways;
    };
    for (auto [label, den, hden, hways] :
         {Point{"0.125x", 8, 4, 4}, Point{"0.25x", 4, 2, 4}}) {
        StreamlineConfig bare;
        bare.fixedDen = den;
        bare.realignment = false;

        StreamlineConfig realign = bare;
        realign.realignment = true;

        StreamlineConfig skew = realign;
        skew.skewedIndexing = true;

        StreamlineConfig hybrid = realign;
        hybrid.fixedDen = hden;
        hybrid.fixedWays = hways;

        std::printf("%-10s %+11.1f%% %+11.1f%% %+11.1f%% %+11.1f%%\n",
                    label, 100 * (speedupOf(bare, scale) - 1),
                    100 * (speedupOf(realign, scale) - 1),
                    100 * (speedupOf(skew, scale) - 1),
                    100 * (speedupOf(hybrid, scale) - 1));
        std::fflush(stdout);
    }
    std::printf("paper: realignment recovers 72-79%% of filtering loss;"
                " skew recovers the rest; hybrid can beat unfiltered at"
                " small sizes\n");
    return 0;
}
