/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench prints its parameters (scale, seed, workloads) so runs are
 * reproducible; SL_BENCH_SCALE and SL_MIX_COUNT override the laptop-scale
 * defaults.
 */

#ifndef SL_BENCH_BENCH_UTIL_HH
#define SL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "trace/mix.hh"

namespace sl
{
namespace bench
{

/** Trace scale for benches (env SL_BENCH_SCALE, default 0.35). */
inline double
benchScale()
{
    if (const char* env = std::getenv("SL_BENCH_SCALE"))
        return std::max(0.02, std::atof(env));
    return 0.25;
}

/** The full memory-intensive workload list (all 20). */
inline std::vector<std::string>
allWorkloads()
{
    return workloadNames();
}

/**
 * A representative subset used by the parameter-sweep benches, chosen to
 * cover pointer chasing, hash walks, sparse algebra, and graph kernels.
 */
inline std::vector<std::string>
sweepWorkloads()
{
    return {"spec06_mcf", "spec06_xalancbmk", "spec06_soplex",
            "gap_bfs", "gap_cc", "gap_tc"};
}

/** Cached per-workload baseline run (stride L1, no L2 prefetcher). */
inline const RunResult&
baseline(const std::string& workload, double scale)
{
    static std::map<std::string, RunResult> cache;
    auto it = cache.find(workload);
    if (it == cache.end()) {
        RunConfig cfg;
        cfg.traceScale = scale;
        it = cache.emplace(workload, runWorkload(cfg, workload)).first;
    }
    return it->second;
}

/** Geomean speedup of a config over the baseline across workloads. */
inline double
geomeanSpeedup(const std::vector<std::string>& workloads,
               const RunConfig& cfg, double scale)
{
    std::vector<double> speedups;
    for (const auto& w : workloads) {
        RunConfig c = cfg;
        c.traceScale = scale;
        const auto r = runWorkload(c, w);
        speedups.push_back(r.cores[0].ipc /
                           baseline(w, scale).cores[0].ipc);
    }
    return geomean(speedups);
}

inline void
banner(const char* what)
{
    std::printf("== %s ==\n", what);
    std::printf("   scale=%.2f (SL_BENCH_SCALE to override); shapes, not"
                " absolute numbers, are the reproduction target\n",
                benchScale());
}

} // namespace bench
} // namespace sl

#endif // SL_BENCH_BENCH_UTIL_HH
