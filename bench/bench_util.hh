/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench submits its simulation jobs through a BatchRunner
 * (sim/batch.hh), so sweeps parallelise across SL_JOBS worker threads
 * with results bit-identical to serial execution. Each process also
 * accumulates every job it ran into a JSON document printed at exit
 * between ==JSON== / ==END-JSON== marker lines, so scripts get
 * machine-readable metrics next to the human tables.
 *
 * SL_BENCH_SCALE and SL_MIX_COUNT override the laptop-scale defaults.
 */

#ifndef SL_BENCH_BENCH_UTIL_HH
#define SL_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/batch.hh"
#include "sim/runner.hh"
#include "trace/mix.hh"

namespace sl
{
namespace bench
{

/** Trace scale for benches (env SL_BENCH_SCALE, default 0.25). */
inline double
benchScale()
{
    if (const char* env = std::getenv("SL_BENCH_SCALE"))
        return std::max(0.02, std::atof(env));
    return 0.25;
}

/** The full memory-intensive workload list (all 20). */
inline std::vector<std::string>
allWorkloads()
{
    return workloadNames();
}

/**
 * A representative subset used by the parameter-sweep benches, chosen to
 * cover pointer chasing, hash walks, sparse algebra, and graph kernels.
 */
inline std::vector<std::string>
sweepWorkloads()
{
    return {"spec06_mcf", "spec06_xalancbmk", "spec06_soplex",
            "gap_bfs", "gap_cc", "gap_tc"};
}

/**
 * Per-process JSON report. Every runBatch() call records its jobs here;
 * at process exit the whole document prints between ==JSON== and
 * ==END-JSON== lines. Benches that compute derived values (summary
 * rows, offline-model tables) attach them via note().
 */
class JsonReport
{
  public:
    static JsonReport&
    instance()
    {
        static JsonReport report;
        // Registered AFTER report's destructor so the exit hook runs
        // while the object is still alive (atexit/dtor LIFO order).
        static const int hook =
            (std::atexit([] { instance().emit(); }), 0);
        (void)hook;
        return report;
    }

    void
    setBench(std::string name)
    {
        std::lock_guard<std::mutex> lock(mu_);
        bench_ = std::move(name);
    }

    void
    record(const std::vector<ExperimentSpec>& specs,
           const std::vector<JobResult>& results)
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < results.size(); ++i)
            jobs_.push_back(toJson(specs[i], results[i]));
    }

    /** Attach one extra JSON *object* to the document's "notes" array. */
    void
    note(const std::string& json_object)
    {
        std::lock_guard<std::mutex> lock(mu_);
        notes_.push_back(json_object);
    }

  private:
    JsonReport()
        : start_(std::chrono::steady_clock::now()),
          threads_(defaultJobThreads())
    {
    }

    void
    emit()
    {
        std::lock_guard<std::mutex> lock(mu_);
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        std::string doc = "{\"bench\":\"" + jsonEscape(bench_) + "\"";
        doc += ",\"threads\":" + std::to_string(threads_);
        doc += ",\"wall_seconds\":" + jsonNumber(wall);
        doc += ",\"jobs\":[";
        for (std::size_t i = 0; i < jobs_.size(); ++i)
            doc += (i ? "," : "") + jobs_[i];
        doc += "],\"notes\":[";
        for (std::size_t i = 0; i < notes_.size(); ++i)
            doc += (i ? "," : "") + notes_[i];
        doc += "]}";
        std::printf("==JSON==\n%s\n==END-JSON==\n", doc.c_str());
        std::fflush(stdout);
    }

    std::mutex mu_;
    std::string bench_ = "unnamed";
    std::vector<std::string> jobs_;
    std::vector<std::string> notes_;
    std::chrono::steady_clock::time_point start_;
    unsigned threads_;
};

/**
 * Telemetry knobs from the environment: SL_TELEMETRY=1 enables interval
 * sampling, SL_TELEMETRY_INTERVAL overrides the sample period (and
 * implies enablement), and SL_TELEMETRY_OUT=prefix additionally writes
 * prefix.jsonl / prefix.csv / prefix.trace.json (BatchRunner rewrites
 * the paths per job, so sweeps get one file set per job).
 */
inline TelemetryConfig
telemetryFromEnv()
{
    TelemetryConfig t;
    if (const char* env = std::getenv("SL_TELEMETRY"))
        t.enabled = std::atoi(env) != 0;
    if (const char* env = std::getenv("SL_TELEMETRY_INTERVAL")) {
        const long long v = std::atoll(env);
        if (v > 0) {
            t.intervalCycles = static_cast<Cycle>(v);
            t.enabled = true;
        }
    }
    if (const char* env = std::getenv("SL_TELEMETRY_OUT")) {
        if (const std::string prefix = env; !prefix.empty()) {
            t.jsonlPath = prefix + ".jsonl";
            t.csvPath = prefix + ".csv";
            t.tracePath = prefix + ".trace.json";
            t.enabled = true;
        }
    }
    return t;
}

/**
 * Run @p specs through the process-wide BatchRunner, record them in the
 * JSON report, and fail loudly on the first failed job (its repro
 * bundle is written first, matching runWorkloads's behaviour). Specs
 * without their own telemetry config inherit the SL_TELEMETRY* env
 * knobs, so any bench can be run instrumented without code changes.
 */
inline std::vector<JobResult>
runBatch(const std::vector<ExperimentSpec>& specs_in)
{
    static BatchRunner runner;
    static const TelemetryConfig env_tele = telemetryFromEnv();
    const std::vector<ExperimentSpec>* use = &specs_in;
    std::vector<ExperimentSpec> owned;
    if (env_tele.enabled) {
        owned = specs_in;
        for (auto& s : owned)
            if (!s.config.telemetry.enabled)
                s.config.telemetry = env_tele;
        use = &owned;
    }
    const std::vector<ExperimentSpec>& specs = *use;
    auto results = runner.run(specs);
    JsonReport::instance().record(specs, results);
    for (const auto& jr : results) {
        if (!jr.ok) {
            if (std::ofstream out(reproBundlePath()); out)
                out << jr.reproBundle;
            throw *jr.error;
        }
    }
    return results;
}

/** One single-core job per workload under the same config. */
inline std::vector<RunResult>
runAcross(const RunConfig& proto, const std::vector<std::string>& workloads,
          double scale, const std::string& label)
{
    std::vector<ExperimentSpec> specs;
    for (const auto& w : workloads) {
        RunConfig c = proto;
        c.cores = 1;
        c.traceScale = scale;
        specs.push_back({label + ":" + w, c, {w}});
    }
    const auto jobs = runBatch(specs);
    std::vector<RunResult> out;
    out.reserve(jobs.size());
    for (const auto& j : jobs)
        out.push_back(j.result);
    return out;
}

namespace detail
{

using BaselineKey = std::pair<std::string, double>;

inline std::mutex&
baselineMutex()
{
    static std::mutex mu;
    return mu;
}

inline std::map<BaselineKey, RunResult>&
baselineCache()
{
    static std::map<BaselineKey, RunResult> cache;
    return cache;
}

} // namespace detail

/**
 * Batch the not-yet-cached baseline runs (stride L1, no L2 prefetcher)
 * for @p workloads at @p scale through the worker pool. Call before a
 * sweep so the per-workload baseline() lookups below all hit.
 */
inline void
warmBaselines(const std::vector<std::string>& workloads, double scale)
{
    std::vector<std::string> missing;
    {
        std::lock_guard<std::mutex> lock(detail::baselineMutex());
        const auto& cache = detail::baselineCache();
        for (const auto& w : workloads) {
            if (cache.count({w, scale}))
                continue;
            if (std::find(missing.begin(), missing.end(), w) ==
                missing.end())
                missing.push_back(w);
        }
    }
    if (missing.empty())
        return;

    std::vector<ExperimentSpec> specs;
    for (const auto& w : missing) {
        RunConfig cfg;
        cfg.traceScale = scale;
        specs.push_back({"baseline:" + w, cfg, {w}});
    }
    const auto jobs = runBatch(specs);

    std::lock_guard<std::mutex> lock(detail::baselineMutex());
    for (std::size_t i = 0; i < missing.size(); ++i)
        detail::baselineCache().emplace(
            detail::BaselineKey{missing[i], scale}, jobs[i].result);
}

/**
 * Cached baseline run, keyed by workload AND scale so benches mixing
 * scales (e.g. Fig 10's capped multicore scale) don't cross-contaminate.
 * Thread-safe; map references stay valid because nothing ever erases.
 */
inline const RunResult&
baseline(const std::string& workload, double scale)
{
    {
        std::lock_guard<std::mutex> lock(detail::baselineMutex());
        const auto& cache = detail::baselineCache();
        if (auto it = cache.find({workload, scale}); it != cache.end())
            return it->second;
    }
    warmBaselines({workload}, scale);
    std::lock_guard<std::mutex> lock(detail::baselineMutex());
    return detail::baselineCache().at({workload, scale});
}

/** Geomean speedup of a config over the baseline across workloads. */
inline double
geomeanSpeedup(const std::vector<std::string>& workloads,
               const RunConfig& cfg, double scale)
{
    warmBaselines(workloads, scale);
    const auto runs = runAcross(
        cfg, workloads, scale, cfg.l1Name() + "+" + cfg.l2Name());
    std::vector<double> speedups;
    for (std::size_t i = 0; i < workloads.size(); ++i)
        speedups.push_back(runs[i].cores[0].ipc /
                           baseline(workloads[i], scale).cores[0].ipc);
    return geomean(speedups);
}

inline void
banner(const char* what)
{
    JsonReport::instance().setBench(what);
    std::printf("== %s ==\n", what);
    std::printf("   scale=%.2f (SL_BENCH_SCALE to override); shapes, not"
                " absolute numbers, are the reproduction target\n",
                benchScale());
    std::printf("   jobs run on %u threads (SL_JOBS to override)\n",
                defaultJobThreads());
}

} // namespace bench
} // namespace sl

#endif // SL_BENCH_BENCH_UTIL_HH
