/**
 * @file
 * §V-D3: offline MIN vs TP-MIN replacement over correlation traces
 * extracted from the workloads, across store capacities. TP-MIN trades
 * trigger hits for correlation hits -- the utility the prefetch actually
 * needs (Fig 6).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/tp_min.hh"

int
main()
{
    using namespace sl;
    using namespace sl::bench;
    banner("MIN vs TP-MIN offline replacement (Fig 6 / §V-D3)");

    const double scale = benchScale();
    std::printf("%-20s %8s | %13s %13s | %13s %13s\n", "workload", "cap",
                "MIN trig", "MIN corr", "TPMIN trig", "TPMIN corr");
    for (const auto& w : sweepWorkloads()) {
        const auto trace = correlationsFromTrace(*getTrace(w, scale));
        for (std::size_t cap : {4096u, 16384u}) {
            const auto m = simulateMin(trace, cap);
            const auto p = simulateTpMin(trace, cap);
            std::printf("%-20s %8zu | %12.1f%% %12.1f%% | %12.1f%%"
                        " %12.1f%%\n",
                        w.c_str(), cap,
                        100.0 * m.triggerHits / m.accesses,
                        100.0 * m.correlationHits / m.accesses,
                        100.0 * p.triggerHits / p.accesses,
                        100.0 * p.correlationHits / p.accesses);
            JsonReport::instance().note(
                "{\"workload\":\"" + jsonEscape(w) +
                "\",\"capacity\":" + std::to_string(cap) +
                ",\"min_trigger_hit\":" +
                jsonNumber(1.0 * m.triggerHits / m.accesses) +
                ",\"min_correlation_hit\":" +
                jsonNumber(1.0 * m.correlationHits / m.accesses) +
                ",\"tpmin_trigger_hit\":" +
                jsonNumber(1.0 * p.triggerHits / p.accesses) +
                ",\"tpmin_correlation_hit\":" +
                jsonNumber(1.0 * p.correlationHits / p.accesses) + "}");
            std::fflush(stdout);
        }
    }
    std::printf("paper: TP-MIN improves correlation hit rate +9.3pp ->"
                " accuracy +4pp, speedup +1.9pp\n");
    return 0;
}
