#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, in the plain build and
# again under ASan+UBSan (-DSL_SANITIZE=ON). Run from the repo root:
#
#   scripts/check.sh            # all modes
#   scripts/check.sh plain      # plain build only
#   scripts/check.sh sanitize   # sanitizer build only
#   scripts/check.sh simspeed   # simulator-speed gate (relative + hard floors)
#   scripts/check.sh telemetry  # instrumented run + export validation
#   scripts/check.sh resilience # hang-timeout kill + manifest resume
#   scripts/check.sh multicore  # 2-core ASan smoke + single-core digest gate
#   scripts/check.sh tracecache # persistent trace cache: cold/warm/corruption
#   scripts/check.sh fastwake   # fast-wake mode: equivalence + speedup gate
#   scripts/check.sh sampling   # sampled runs: fidelity + speedup + resume
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-all}"

# Leak checking is off for the sanitizer run: the simulator's
# run-to-completion ownership model abandons in-flight MemRequests at
# process exit (and SimError unwinding abandons them by design), which
# LSan reports as teardown leaks. ASan memory errors (use-after-free,
# overflow) and UBSan (-fno-sanitize-recover, hard errors) stay fully
# active — those are the bugs this mode exists to catch.
export ASAN_OPTIONS="detect_leaks=0:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:${UBSAN_OPTIONS:-}"

run_mode() {
    local name="$1" dir="$2"; shift 2
    echo "== ${name}: configure =="
    cmake -B "${dir}" -S . "$@"
    echo "== ${name}: build =="
    cmake --build "${dir}" -j
    echo "== ${name}: ctest =="
    ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

# One tiny bench through the BatchRunner on 2 worker threads; the JSON
# block between ==JSON== / ==END-JSON== must parse and report its jobs.
bench_smoke() {
    local dir="$1"
    echo "== bench smoke: BatchRunner JSON (${dir}) =="
    local out="${dir}/bench_smoke.out"
    SL_BENCH_SCALE=0.02 SL_JOBS=2 "${dir}/bench/bench_aliasing" > "${out}"
    python3 - "${out}" <<'EOF'
import json, sys
text = open(sys.argv[1]).read()
body = text.split("==JSON==")[1].split("==END-JSON==")[0]
doc = json.loads(body)
assert doc["threads"] == 2, doc["threads"]
assert doc["jobs"], "no jobs recorded"
assert all(j["ok"] for j in doc["jobs"]), "failed jobs in smoke run"
print(f"bench smoke ok: {len(doc['jobs'])} jobs, "
      f"{doc['wall_seconds']:.1f}s wall")
EOF
}

# Simulator-speed gate: run bench_simspeed on a tiny matrix, parse its
# JSON, and fold the per-config and per-cell throughput into
# BENCH_simspeed.json at the repo root (perf trajectory across PRs).
# Regressions below SL_SIMSPEED_FLOOR x the recorded baseline FAIL the
# check. The default floor is 0.75: the tiny-scale cells are sub-second
# and back-to-back identical-binary runs disperse by ~12% on shared
# hardware, so a tighter floor flags noise, not regressions (tighten
# via SL_SIMSPEED_FLOOR on a quiet dedicated machine; the telemetry
# stage checks its own disabled-cost claim). The gap_bfs cells also
# carry hard absolute floors that survive baseline refreshes.
simspeed() {
    local dir="$1"
    echo "== simspeed: throughput gate (${dir}) =="
    cmake --build "${dir}" --target bench_simspeed -j
    local out="${dir}/bench_simspeed.out"
    SL_BENCH_SCALE="${SL_SIMSPEED_SCALE:-0.05}" SL_JOBS=1 \
        "${dir}/bench/bench_simspeed" > "${out}"
    SL_SIMSPEED_FLOOR="${SL_SIMSPEED_FLOOR:-0.75}" \
        python3 - "${out}" BENCH_simspeed.json <<'EOF'
import json, os, sys
text = open(sys.argv[1]).read()
body = text.split("==JSON==")[1].split("==END-JSON==")[0]
doc = json.loads(body)
configs = {n["config"]: n for n in doc["notes"]
           if n["kind"] == "simspeed_config"}
cells = [n for n in doc["notes"] if n["kind"] == "simspeed_cell"]
mc = [n for n in doc["notes"] if n["kind"] == "simspeed_multicore"]
tele = [n for n in doc["notes"] if n["kind"] == "simspeed_telemetry"]
fw = [n for n in doc["notes"] if n["kind"] == "simspeed_fastwake"]
assert configs, "no simspeed_config notes in bench output"
assert cells, "no simspeed_cell notes in bench output"
assert tele, "no simspeed_telemetry note in bench output"
path = sys.argv[2]
try:
    snap = json.load(open(path))
except (FileNotFoundError, json.JSONDecodeError):
    snap = {}
prev = snap.get("current", {}).get("kcycles_per_sec", {})
prev_cells = snap.get("current", {}).get("cell_kcycles_per_sec", {})
prev_mc = snap.get("current", {}).get("multicore_kcycles_per_sec", {})
prev_workloads = snap.get("current", {}).get("workloads", [])
cur = {c: n["sim_kcycles_per_sec"] for c, n in configs.items()}
cur_cells = {c["config"]: {} for c in cells}
for c in cells:
    cur_cells[c["config"]][c["workload"]] = c["sim_kcycles_per_sec"]
cur_workloads = sorted({c["workload"] for c in cells})
# 2-core cells exercise the shared-memory path (scheduled DRAM, LLC
# arbitration, pressure probe); tracked per config like 1-core cells.
cur_mc = {n["config"]: n["sim_kcycles_per_sec"] for n in mc}
snap["current"] = {
    "scale": float(text.split("scale=")[1].split()[0]),
    "workloads": cur_workloads,
    "kcycles_per_sec": cur,
    "retired_mips": {c: n["retired_mips"] for c, n in configs.items()},
    "metadata_ops_per_sec": {c: n.get("metadata_ops_per_sec", 0)
                             for c, n in configs.items()},
    "cell_kcycles_per_sec": cur_cells,
    "multicore_kcycles_per_sec": cur_mc,
    "telemetry": {
        "off_kcycles_per_sec": tele[0]["off_kcycles_per_sec"],
        "on_kcycles_per_sec": tele[0]["on_kcycles_per_sec"],
        "enabled_overhead_pct": tele[0]["enabled_overhead_pct"],
    },
    # Fast-wake cells (DESIGN.md §14): kcycles/s under SchedMode::FastWake
    # plus the back-to-back speedup ratio over default mode. The fastwake
    # stage gates the gap_bfs ratios at the acceptance scale; here they
    # are recorded for the trajectory at this stage's (smaller) scale.
    "fastwake": {
        f"{n['config']}/{n['workload']}": {
            "kcycles_per_sec": n["fastwake_kcycles_per_sec"],
            "kcycles_per_sec_median": n["fastwake_kcycles_per_sec_median"],
            "speedup_ratio": n["speedup_ratio"],
            "speedup_ratio_median": n["speedup_ratio_median"],
        } for n in fw
    },
}
FLOOR = float(os.environ.get("SL_SIMSPEED_FLOOR", "0.75"))
failures = []
# The config aggregate is only comparable when the workload matrix is
# unchanged (adding a workload shifts the cycle mix); cells always are.
if prev_workloads == cur_workloads:
    for c, kcps in cur.items():
        if c in prev and prev[c] > 0 and kcps < FLOOR * prev[c]:
            failures.append(f"config '{c}': {kcps:.0f} kc/s vs baseline "
                            f"{prev[c]:.0f} kc/s ({kcps / prev[c]:.2f}x)")
for c, by_wl in cur_cells.items():
    for w, kcps in by_wl.items():
        base = prev_cells.get(c, {}).get(w, 0)
        if base > 0 and kcps < FLOOR * base:
            failures.append(f"cell '{c}/{w}': {kcps:.0f} kc/s vs "
                            f"baseline {base:.0f} kc/s "
                            f"({kcps / base:.2f}x)")
for c, kcps in cur_mc.items():
    base = prev_mc.get(c, 0)
    if base > 0 and kcps < FLOOR * base:
        failures.append(f"multicore '{c}': {kcps:.0f} kc/s vs baseline "
                        f"{base:.0f} kc/s ({kcps / base:.2f}x)")
# Hard absolute floors for the gap_bfs cells (the retry-path stress
# case): unlike the relative gate these survive baseline refreshes, so
# reverting the flattened DRAM retry path fails here even after an
# (accidental) baseline rewrite. Floors sit ~2x below the slowest
# observed post-flattening run at scale 0.05, far outside bench noise;
# SL_SIMSPEED_HARD scales them (0 disables, e.g. under emulation).
HARD = float(os.environ.get("SL_SIMSPEED_HARD", "1"))
GAP_FLOORS = {"baseline": 4500, "streamline": 3500,
              "triage": 4500, "triangel": 2500}
for c, floor in GAP_FLOORS.items():
    kcps = cur_cells.get(c, {}).get("gap_bfs", 0)
    if HARD > 0 and kcps and kcps < floor * HARD:
        failures.append(f"hard floor 'gap_bfs/{c}': {kcps:.0f} kc/s < "
                        f"{floor * HARD:.0f} kc/s absolute minimum")
json.dump(snap, open(path, "w"), indent=2, sort_keys=True)
print(f"simspeed snapshot -> {path}: " +
      ", ".join(f"{c}={v:.0f}kc/s" for c, v in sorted(cur.items())))
print(f"telemetry enabled overhead: "
      f"{tele[0]['enabled_overhead_pct']:.1f}%")
if failures:
    print("FAIL: simulator-speed regression below "
          f"{FLOOR:.2f}x of recorded baseline:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
EOF
}

# Trace-cache stage (DESIGN.md §13): a cold run must publish a cache
# file, a warm run must mmap it and produce byte-identical output, a
# cache-less run must match both (the cache may never change results),
# and a corrupted file must be detected, reported, regenerated, and
# healed in place.
tracecache() {
    local dir="$1"
    echo "== trace cache: cold/warm/corruption (${dir}) =="
    cmake --build "${dir}" --target sl_run -j
    local cache="${dir}/trace_cache_check"
    rm -rf "${cache}"
    local run=("${dir}/src/sim/sl_run" --l2 streamline --scale 0.05
               gap_bfs)
    SL_DUMP_STATS=1 SL_TRACE_CACHE="${cache}" "${run[@]}" \
        > "${dir}/tc_cold.out"
    test -s "${cache}"/gap_bfs_*.sltc
    SL_DUMP_STATS=1 SL_TRACE_CACHE="${cache}" "${run[@]}" \
        > "${dir}/tc_warm.out"
    cmp "${dir}/tc_cold.out" "${dir}/tc_warm.out"
    SL_DUMP_STATS=1 "${run[@]}" > "${dir}/tc_off.out"
    cmp "${dir}/tc_cold.out" "${dir}/tc_off.out"
    echo "cold == warm == cache-less (stats bit-identical)"

    # Flip one payload byte: the next run must note the CRC failure on
    # stderr, regenerate transparently, and republish a healthy file.
    python3 - "${cache}"/gap_bfs_*.sltc <<'EOF'
import sys
with open(sys.argv[1], "r+b") as f:
    f.seek(200)
    b = f.read(1)[0]
    f.seek(200)
    f.write(bytes([b ^ 0x55]))
EOF
    SL_DUMP_STATS=1 SL_TRACE_CACHE="${cache}" "${run[@]}" \
        > "${dir}/tc_heal.out" 2> "${dir}/tc_heal.err"
    grep -q 'trace cache:.*regenerating' "${dir}/tc_heal.err"
    cmp "${dir}/tc_cold.out" "${dir}/tc_heal.out"
    SL_DUMP_STATS=1 SL_TRACE_CACHE="${cache}" "${run[@]}" \
        > "${dir}/tc_rewarm.out" 2> "${dir}/tc_rewarm.err"
    test ! -s "${dir}/tc_rewarm.err"
    cmp "${dir}/tc_cold.out" "${dir}/tc_rewarm.out"
    rm -rf "${cache}"
    echo "corrupt file detected, regenerated, and healed in place"
}

# Resilience stage: a sweep job armed with a lost-request fault and a
# wall-clock budget far below its runtime. The job timeout must kill it
# (snapshotting the hung state first) and journal it as failed; the
# hang snapshot must restore and run to completion; re-invoking the
# sweep against the same manifest must rerun the killed job to green,
# after which a third invocation serves it from the manifest without
# simulating anything. (A request the fault actually eats is caught by
# the deadlock detector as an immediate SimError -- the fault campaign
# covers that path -- so the rate here is armed-but-tiny and the wedge
# comes from the wall budget.)
resilience() {
    local dir="$1"
    echo "== resilience: hang timeout + manifest resume (${dir}) =="
    cmake --build "${dir}" --target sl_run -j
    local m="${dir}/resilience.manifest.jsonl"
    rm -f "${m}" sl_snapshot_hang_job0.bin
    local sweep=("${dir}/src/sim/sl_run" --l2 streamline --scale 0.5
                 --fault-lose-request 1e-9 --manifest "${m}" spec06_mcf)
    if "${sweep[@]}" --job-timeout 0.15 > "${dir}/resilience1.out"; then
        echo "FAIL: sweep with an over-budget job exited 0"
        exit 1
    fi
    grep -q 'FAILED \[job_timeout\]' "${dir}/resilience1.out"
    grep -q '"ok":false' "${m}"
    test -s sl_snapshot_hang_job0.bin
    echo "hung job killed, journalled, and snapshotted"

    # Same fault wiring as the save side: the snapshot carries the
    # injector's RNG stream, so the restoring System must build it too.
    "${dir}/src/sim/sl_run" --l2 streamline --scale 0.5 \
        --fault-lose-request 1e-9 \
        --restore-snapshot sl_snapshot_hang_job0.bin spec06_mcf \
        > "${dir}/resilience1b.out"
    grep -q 'spec06_mcf ipc=' "${dir}/resilience1b.out"
    echo "hang snapshot restored and ran to completion"

    "${sweep[@]}" --job-timeout 60 > "${dir}/resilience2.out"
    grep -q 'job spec06_mcf: ok ipc=' "${dir}/resilience2.out"
    "${sweep[@]}" > "${dir}/resilience3.out"
    grep -q 'job spec06_mcf: ok (from manifest)' "${dir}/resilience3.out"
    python3 - "${dir}/resilience3.out" <<'EOF'
import json, sys
text = open(sys.argv[1]).read()
doc = json.loads(text.split("==JSON==")[1].split("==END-JSON==")[0])
assert doc["jobs"] and all(j["ok"] for j in doc["jobs"]), doc
print(f"resilience ok: {len(doc['jobs'])} job(s) green after resume")
EOF
    rm -f sl_snapshot_hang_job0.bin
}

# Telemetry stage: a short instrumented run through the sl_run CLI, then
# validate the exports — JSONL row count matches the reported interval
# count (>= 10, contiguous, with live IPC/MPKI/bandwidth), the CSV rows
# match, and the Chrome trace parses cleanly with monotone timestamps.
telemetry() {
    local dir="$1"
    echo "== telemetry: instrumented run + export validation (${dir}) =="
    cmake --build "${dir}" --target sl_run -j
    local prefix="${dir}/telemetry_check"
    "${dir}/src/sim/sl_run" --l2 streamline --scale 0.05 \
        --telemetry-interval 20000 \
        --telemetry-out "${prefix}" \
        --trace-out "${prefix}.trace.json" \
        spec06_mcf > "${prefix}.out"
    python3 -m json.tool "${prefix}.trace.json" > /dev/null
    python3 - "${prefix}" <<'EOF'
import json, sys
prefix = sys.argv[1]
rows = [json.loads(l) for l in open(prefix + ".jsonl") if l.strip()]
assert len(rows) >= 10, f"only {len(rows)} interval records"
out = open(prefix + ".out").read()
reported = int(out.split("intervals=")[1].split()[0])
assert len(rows) == reported, (len(rows), reported)
for prev, row in zip(rows, rows[1:]):
    assert row["start_cycle"] == prev["end_cycle"], "gap in the series"
assert sum(r["ipc"] > 0 for r in rows) >= 10, "dead IPC series"
assert sum(r["l1d_mpki"] > 0 for r in rows) >= 10, "dead MPKI series"
assert sum(r["dram_bytes_per_kcycle"] > 0 for r in rows) >= 10, \
    "dead bandwidth series"
trace = json.load(open(prefix + ".trace.json"))
assert isinstance(trace, list) and len(trace) > 2, "trace too small"
ts = [e["ts"] for e in trace]
assert ts == sorted(ts), "trace ts not monotone"
csv_rows = open(prefix + ".csv").read().strip().splitlines()
assert len(csv_rows) == len(rows) + 1, (len(csv_rows), len(rows))
print(f"telemetry ok: {len(rows)} intervals, {len(trace)} trace events")
EOF
}

# Fast-wake stage (DESIGN.md §14): the opt-in scheduling mode that
# virtualizes retry polls into wakeup lists and cache-to-cache event
# hops into direct calls. Four gates: (a) the mode-equivalence harness
# and fast-wake golden digests (gtest: identical retired counts, IPC
# within the documented 15% tolerance, pinned full-run stat digests,
# cross-mode snapshot rejection), (b) a fast-wake snapshot round trip
# is part of the same filter, (c) an ASan+UBSan fast-wake run of the
# retry-storm workload, and (d) the measured speedup: bench_simspeed's
# fast-wake matrix at SL_FASTWAKE_SCALE (default 0.25, the acceptance
# scale) must show every gap_bfs cell's median ratio above
# SL_FASTWAKE_FLOOR (default 1.8; 0 disables, e.g. under emulation or
# on heavily contended hardware).
fastwake() {
    local dir="$1" sandir="$2"
    echo "== fastwake: equivalence + digests + ASan smoke + speed gate =="
    cmake --build "${dir}" --target sl_tests bench_simspeed -j
    "${dir}/tests/sl_tests" --gtest_brief=1 --gtest_filter='FastWake*'
    echo "fast-wake equivalence harness and golden digests green"

    cmake --build "${sandir}" --target sl_run -j
    "${sandir}/src/sim/sl_run" --l2 streamline --scale 0.05 --fast-wake \
        gap_bfs > "${sandir}/fastwake_smoke.out"
    grep -q 'gap_bfs ipc=' "${sandir}/fastwake_smoke.out"
    echo "fast-wake ASan gap_bfs smoke green"

    local out="${dir}/bench_fastwake.out"
    SL_BENCH_SCALE="${SL_FASTWAKE_SCALE:-0.25}" SL_JOBS=1 \
        SL_SIMSPEED_FASTWAKE_ONLY=1 \
        "${dir}/bench/bench_simspeed" > "${out}"
    SL_FASTWAKE_FLOOR="${SL_FASTWAKE_FLOOR:-1.8}" \
        python3 - "${out}" <<'EOF'
import json, os, sys
text = open(sys.argv[1]).read()
body = text.split("==JSON==")[1].split("==END-JSON==")[0]
fw = [n for n in json.loads(body)["notes"]
      if n["kind"] == "simspeed_fastwake"]
assert fw, "no simspeed_fastwake notes in bench output"
FLOOR = float(os.environ.get("SL_FASTWAKE_FLOOR", "1.8"))
failures = []
for n in fw:
    tag = f"{n['config']}/{n['workload']}"
    print(f"  {tag}: {n['speedup_ratio_median']:.2f}x median "
          f"({n['speedup_ratio']:.2f}x best-of)")
    if n["workload"] == "gap_bfs" and FLOOR > 0 \
            and n["speedup_ratio_median"] < FLOOR:
        failures.append(f"{tag}: {n['speedup_ratio_median']:.2f}x median "
                        f"< {FLOOR:.2f}x floor")
if failures:
    print("FAIL: fast-wake speedup below SL_FASTWAKE_FLOOR:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("fast-wake speed gate green")
EOF
}

# Sampling stage (DESIGN.md §15): the sampled + checkpointed runner.
# Three gates: (a) the sampling unit tests (reassembly fixtures,
# profile/k-means determinism, checkpoint reuse, and the kill + resume
# byte-identity test), (b) an ASan+UBSan sampled run end-to-end (the
# functional-warmup and restore paths shake out memory errors at tiny
# scale), and (c) fidelity + speedup at paper scale: bench_sampling
# runs {streamline,triage,triangel} x {spec06_mcf,gap_bfs} full and
# sampled, and every cell's IPC relative error must stay within
# SL_SAMPLING_ERR (default 0.03 -- IPC is deterministic, so this gate
# is noise-free) while the aggregate warm-checkpoint speedup must stay
# above SL_SAMPLING_FLOOR (default 2.5x; wall clock IS noisy on shared
# hardware, hence the margin under the measured ~3.4x; 0 disables,
# e.g. under emulation).
sampling() {
    local dir="$1" sandir="$2"
    echo "== sampling: unit tests + ASan smoke + fidelity/speed gate =="
    cmake --build "${dir}" --target sl_tests bench_sampling -j
    "${dir}/tests/sl_tests" --gtest_brief=1 --gtest_filter='Sampling*'
    echo "sampling unit, determinism, and resume tests green"

    cmake --build "${sandir}" --target sl_run -j
    local sckpt="${sandir}/sampling_ckpt"
    rm -rf "${sckpt}"
    SL_SAMPLE_DIR="${sckpt}" "${sandir}/src/sim/sl_run" \
        --l2 streamline --scale 0.05 \
        --sample-intervals 12 --sample-k 6 spec06_mcf \
        > "${sandir}/sampling_smoke.out"
    grep -q 'sampled spec06_mcf: ipc=' "${sandir}/sampling_smoke.out"
    rm -rf "${sckpt}"
    echo "sampled-run ASan smoke green"

    local out="${dir}/bench_sampling.out"
    local ckpt="${dir}/sampling_ckpt"
    rm -rf "${ckpt}"
    SL_SAMPLE_DIR="${ckpt}" SL_JOBS=1 "${dir}/bench/bench_sampling" \
        > "${out}"
    rm -rf "${ckpt}"
    SL_SAMPLING_ERR="${SL_SAMPLING_ERR:-0.03}" \
        SL_SAMPLING_FLOOR="${SL_SAMPLING_FLOOR:-2.5}" \
        python3 - "${out}" <<'EOF'
import json, os, sys
text = open(sys.argv[1]).read()
body = text.split("==JSON==")[1].split("==END-JSON==")[0]
notes = json.loads(body)["notes"]
cells = [n for n in notes if n["row"] == "cell"]
agg = [n for n in notes if n["row"] == "aggregate"]
assert len(cells) == 6, f"expected 6 cells, got {len(cells)}"
assert agg, "no aggregate row in bench output"
ERR = float(os.environ.get("SL_SAMPLING_ERR", "0.03"))
FLOOR = float(os.environ.get("SL_SAMPLING_FLOOR", "2.5"))
failures = []
for c in cells:
    tag = f"{c['config']}/{c['workload']}"
    print(f"  {tag}: err {100 * c['rel_err']:.2f}% "
          f"(ci95 {100 * c['rel_ci95']:.2f}%), "
          f"{c['speedup']:.2f}x warm")
    if c["rel_err"] > ERR:
        failures.append(f"{tag}: rel err {100 * c['rel_err']:.2f}% > "
                        f"{100 * ERR:.1f}% gate")
speedup = agg[0]["speedup"]
print(f"  aggregate: {speedup:.2f}x "
      f"(full {agg[0]['full_wall']:.1f}s, "
      f"sampled {agg[0]['sampled_wall']:.1f}s)")
if FLOOR > 0 and speedup < FLOOR:
    failures.append(f"aggregate speedup {speedup:.2f}x < "
                    f"{FLOOR:.2f}x floor")
if failures:
    print("FAIL: sampling fidelity/speed gate:")
    for f in failures:
        print("  " + f)
    sys.exit(1)
print("sampling fidelity and speed gate green")
EOF
}

# Multicore stage: the shared memory system (per-channel DRAM scheduler,
# LLC arbiter with MSHR quotas, MemPressure prefetch demotion) only
# exists when cores > 1 and must be inert otherwise. Two assertions:
# a 2-core mix under ASan+UBSan shakes memory errors out of the new
# queue/arbiter/pressure paths, and the golden-digest oracle proves the
# single-core stat digests stayed bit-identical through the refactor.
multicore() {
    local dir="$1" sandir="$2"
    echo "== multicore: 2-core ASan smoke + 1-core digest gate =="
    cmake --build "${sandir}" --target sl_run -j
    "${sandir}/src/sim/sl_run" --l2 streamline --scale 0.05 \
        --mix spec06_mcf,gap_bfs > "${sandir}/multicore_smoke.out"
    grep -q 'core 0: spec06_mcf ipc=' "${sandir}/multicore_smoke.out"
    grep -q 'core 1: gap_bfs ipc=' "${sandir}/multicore_smoke.out"
    echo "2-core ASan smoke mix green"
    cmake --build "${dir}" --target sl_tests -j
    "${dir}/tests/sl_tests" --gtest_brief=1 \
        --gtest_filter='MetadataFastPathDeterminism.MatchesPreRefactorGoldenStats'
    echo "single-core digests bit-identical to the golden oracle"
}

case "${MODE}" in
  plain)    run_mode plain build; bench_smoke build; resilience build ;;
  sanitize) run_mode asan+ubsan build-asan -DSL_SANITIZE=ON ;;
  simspeed) cmake -B build -S .; simspeed build ;;
  telemetry) cmake -B build -S .; telemetry build ;;
  resilience) cmake -B build -S .; resilience build ;;
  multicore)
    cmake -B build -S .
    cmake -B build-asan -S . -DSL_SANITIZE=ON
    multicore build build-asan
    ;;
  tracecache) cmake -B build -S .; tracecache build ;;
  fastwake)
    cmake -B build -S .
    cmake -B build-asan -S . -DSL_SANITIZE=ON
    fastwake build build-asan
    ;;
  sampling)
    cmake -B build -S .
    cmake -B build-asan -S . -DSL_SANITIZE=ON
    sampling build build-asan
    ;;
  all)
    run_mode plain build
    bench_smoke build
    telemetry build
    resilience build
    tracecache build
    run_mode asan+ubsan build-asan -DSL_SANITIZE=ON
    multicore build build-asan
    fastwake build build-asan
    sampling build build-asan
    simspeed build
    ;;
  *) echo "usage: $0 [plain|sanitize|simspeed|telemetry|resilience|multicore|tracecache|fastwake|sampling|all]" >&2
     exit 2 ;;
esac

echo "check.sh: all requested modes green"
