#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, in the plain build and
# again under ASan+UBSan (-DSL_SANITIZE=ON). Run from the repo root:
#
#   scripts/check.sh            # both modes
#   scripts/check.sh plain      # plain build only
#   scripts/check.sh sanitize   # sanitizer build only
#   scripts/check.sh simspeed   # simulator-speed snapshot (warn-only)
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-all}"

# Leak checking is off for the sanitizer run: the simulator's
# run-to-completion ownership model abandons in-flight MemRequests at
# process exit (and SimError unwinding abandons them by design), which
# LSan reports as teardown leaks. ASan memory errors (use-after-free,
# overflow) and UBSan (-fno-sanitize-recover, hard errors) stay fully
# active — those are the bugs this mode exists to catch.
export ASAN_OPTIONS="detect_leaks=0:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:${UBSAN_OPTIONS:-}"

run_mode() {
    local name="$1" dir="$2"; shift 2
    echo "== ${name}: configure =="
    cmake -B "${dir}" -S . "$@"
    echo "== ${name}: build =="
    cmake --build "${dir}" -j
    echo "== ${name}: ctest =="
    ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

# One tiny bench through the BatchRunner on 2 worker threads; the JSON
# block between ==JSON== / ==END-JSON== must parse and report its jobs.
bench_smoke() {
    local dir="$1"
    echo "== bench smoke: BatchRunner JSON (${dir}) =="
    local out="${dir}/bench_smoke.out"
    SL_BENCH_SCALE=0.02 SL_JOBS=2 "${dir}/bench/bench_aliasing" > "${out}"
    python3 - "${out}" <<'EOF'
import json, sys
text = open(sys.argv[1]).read()
body = text.split("==JSON==")[1].split("==END-JSON==")[0]
doc = json.loads(body)
assert doc["threads"] == 2, doc["threads"]
assert doc["jobs"], "no jobs recorded"
assert all(j["ok"] for j in doc["jobs"]), "failed jobs in smoke run"
print(f"bench smoke ok: {len(doc['jobs'])} jobs, "
      f"{doc['wall_seconds']:.1f}s wall")
EOF
}

# Simulator-speed snapshot: run bench_simspeed on a tiny matrix, parse
# its JSON, and fold the per-config throughput into BENCH_simspeed.json
# at the repo root (perf trajectory across PRs). Warn-only: a slow run
# on a loaded machine must not fail the build.
simspeed() {
    local dir="$1"
    echo "== simspeed: throughput snapshot (${dir}) =="
    cmake --build "${dir}" --target bench_simspeed -j
    local out="${dir}/bench_simspeed.out"
    SL_BENCH_SCALE="${SL_SIMSPEED_SCALE:-0.05}" SL_JOBS=1 \
        "${dir}/bench/bench_simspeed" > "${out}"
    python3 - "${out}" BENCH_simspeed.json <<'EOF'
import json, sys
text = open(sys.argv[1]).read()
body = text.split("==JSON==")[1].split("==END-JSON==")[0]
doc = json.loads(body)
configs = {n["config"]: n for n in doc["notes"]
           if n["kind"] == "simspeed_config"}
assert configs, "no simspeed_config notes in bench output"
path = sys.argv[2]
try:
    snap = json.load(open(path))
except (FileNotFoundError, json.JSONDecodeError):
    snap = {}
prev = snap.get("current", {}).get("kcycles_per_sec", {})
cur = {c: n["sim_kcycles_per_sec"] for c, n in configs.items()}
snap["current"] = {
    "scale": float(text.split("scale=")[1].split()[0]),
    "kcycles_per_sec": cur,
    "retired_mips": {c: n["retired_mips"] for c, n in configs.items()},
}
for c, kcps in cur.items():
    if c in prev and prev[c] > 0 and kcps < 0.7 * prev[c]:
        print(f"WARNING: simspeed regression on '{c}': "
              f"{kcps:.0f} kc/s vs previous {prev[c]:.0f} kc/s")
json.dump(snap, open(path, "w"), indent=2, sort_keys=True)
print(f"simspeed snapshot -> {path}: " +
      ", ".join(f"{c}={v:.0f}kc/s" for c, v in sorted(cur.items())))
EOF
}

case "${MODE}" in
  plain)    run_mode plain build; bench_smoke build ;;
  sanitize) run_mode asan+ubsan build-asan -DSL_SANITIZE=ON ;;
  simspeed) cmake -B build -S .; simspeed build ;;
  all)
    run_mode plain build
    bench_smoke build
    run_mode asan+ubsan build-asan -DSL_SANITIZE=ON
    simspeed build
    ;;
  *) echo "usage: $0 [plain|sanitize|simspeed|all]" >&2; exit 2 ;;
esac

echo "check.sh: all requested modes green"
